// Differential tests for the FlatPermStore / ShardedPermStore set algebra
// against a std::set<std::vector<uint8_t>> reference model, plus the
// ShardedPermStore routing invariants the parallel FMCF sweep relies on.
#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "synth/flat_perm_store.h"
#include "synth/sharded_perm_store.h"

namespace qsyn::synth {
namespace {

using Row = std::vector<std::uint8_t>;
using RowSet = std::set<Row>;

Row random_row(Rng& rng, std::size_t width, std::uint8_t alphabet) {
  Row row(width);
  for (std::size_t i = 0; i < width; ++i) {
    row[i] = static_cast<std::uint8_t>(rng.below(alphabet));
  }
  return row;
}

FlatPermStore store_of(const std::vector<Row>& rows, std::size_t width) {
  FlatPermStore store(width);
  for (const Row& row : rows) store.push_back(row.data());
  return store;
}

RowSet set_of(const std::vector<Row>& rows) {
  return RowSet(rows.begin(), rows.end());
}

void expect_equals_model(const FlatPermStore& store, const RowSet& model) {
  // A sorted, duplicate-free store enumerates exactly the model's rows in
  // the model's (lexicographic) order.
  ASSERT_EQ(store.size(), model.size());
  std::size_t i = 0;
  for (const Row& row : model) {
    ASSERT_EQ(std::memcmp(store.row(i), row.data(), row.size()), 0)
        << "row " << i;
    ++i;
  }
}

TEST(FlatPermStoreDifferential, SortUniqueRandomized) {
  Rng rng(7001);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t width = 1 + rng.below(12);
    const std::uint8_t alphabet =
        static_cast<std::uint8_t>(1 + rng.below(5));  // heavy duplication
    std::vector<Row> rows;
    const std::size_t count = rng.below(200);
    for (std::size_t i = 0; i < count; ++i) {
      rows.push_back(random_row(rng, width, alphabet));
    }
    FlatPermStore store = store_of(rows, width);
    store.sort_unique();
    expect_equals_model(store, set_of(rows));
  }
}

TEST(FlatPermStoreDifferential, SortUniqueAllDuplicates) {
  FlatPermStore store(5);
  const Row row = {4, 3, 2, 1, 0};
  for (int i = 0; i < 100; ++i) store.push_back(row.data());
  store.sort_unique();
  ASSERT_EQ(store.size(), 1u);
  EXPECT_EQ(std::memcmp(store.row(0), row.data(), 5), 0);
}

TEST(FlatPermStoreDifferential, SubtractRandomized) {
  Rng rng(7002);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t width = 1 + rng.below(10);
    const std::uint8_t alphabet = static_cast<std::uint8_t>(1 + rng.below(4));
    std::vector<Row> a_rows;
    std::vector<Row> b_rows;
    for (std::size_t i = rng.below(150); i > 0; --i) {
      a_rows.push_back(random_row(rng, width, alphabet));
    }
    for (std::size_t i = rng.below(150); i > 0; --i) {
      // Bias toward overlap: half the time reuse a row from a.
      if (!a_rows.empty() && rng.bernoulli(0.5)) {
        b_rows.push_back(a_rows[rng.below(a_rows.size())]);
      } else {
        b_rows.push_back(random_row(rng, width, alphabet));
      }
    }
    FlatPermStore a = store_of(a_rows, width);
    FlatPermStore b = store_of(b_rows, width);
    a.sort_unique();
    b.sort_unique();
    a.subtract_sorted(b);

    RowSet model = set_of(a_rows);
    for (const Row& row : b_rows) model.erase(row);
    expect_equals_model(a, model);
  }
}

TEST(FlatPermStoreDifferential, MergeRandomizedIncludingOverlap) {
  Rng rng(7003);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t width = 1 + rng.below(10);
    const std::uint8_t alphabet = static_cast<std::uint8_t>(1 + rng.below(4));
    std::vector<Row> a_rows;
    std::vector<Row> b_rows;
    for (std::size_t i = rng.below(120); i > 0; --i) {
      a_rows.push_back(random_row(rng, width, alphabet));
    }
    for (std::size_t i = rng.below(120); i > 0; --i) {
      if (!a_rows.empty() && rng.bernoulli(0.5)) {
        b_rows.push_back(a_rows[rng.below(a_rows.size())]);
      } else {
        b_rows.push_back(random_row(rng, width, alphabet));
      }
    }
    FlatPermStore a = store_of(a_rows, width);
    FlatPermStore b = store_of(b_rows, width);
    a.sort_unique();
    b.sort_unique();
    a.merge_sorted(b);

    RowSet model = set_of(a_rows);
    for (const Row& row : b_rows) model.insert(row);
    expect_equals_model(a, model);
  }
}

TEST(FlatPermStoreDifferential, MergeFullyOverlappingIsIdempotent) {
  Rng rng(7004);
  std::vector<Row> rows;
  for (int i = 0; i < 80; ++i) rows.push_back(random_row(rng, 6, 3));
  FlatPermStore a = store_of(rows, 6);
  a.sort_unique();
  FlatPermStore b = store_of(rows, 6);
  b.sort_unique();
  const std::size_t before = a.size();
  a.merge_sorted(b);
  EXPECT_EQ(a.size(), before);  // duplicates across stores kept once
}

TEST(FlatPermStoreDifferential, ContainsRandomized) {
  Rng rng(7005);
  const std::size_t width = 8;
  std::vector<Row> rows;
  for (int i = 0; i < 300; ++i) rows.push_back(random_row(rng, width, 4));
  FlatPermStore store = store_of(rows, width);
  store.sort_unique();
  const RowSet model = set_of(rows);
  for (int i = 0; i < 300; ++i) {
    const Row probe = random_row(rng, width, 4);
    EXPECT_EQ(store.contains_sorted(probe.data()), model.count(probe) == 1);
  }
}

TEST(FlatPermStore, AppendConcatenatesVerbatim) {
  FlatPermStore a(3);
  FlatPermStore b(3);
  const Row r1 = {2, 1, 0};
  const Row r2 = {0, 1, 2};
  a.push_back(r1.data());
  b.push_back(r2.data());
  b.push_back(r1.data());
  a.append(b);
  ASSERT_EQ(a.size(), 3u);
  EXPECT_EQ(std::memcmp(a.row(0), r1.data(), 3), 0);
  EXPECT_EQ(std::memcmp(a.row(1), r2.data(), 3), 0);
  EXPECT_EQ(std::memcmp(a.row(2), r1.data(), 3), 0);
}

// --- ShardedPermStore ------------------------------------------------------------

TEST(ShardedPermStore, RoutingIsMonotoneInRowOrder) {
  // shard_of must be monotone w.r.t. lexicographic row order — that is the
  // invariant that makes flatten() globally sorted. Rows hold domain labels
  // in [0, width), as everywhere in the perm stores.
  Rng rng(7100);
  for (const std::size_t shard_count : {1u, 2u, 7u, 16u, 64u}) {
    ShardedPermStore store(5, shard_count);
    for (int i = 0; i < 500; ++i) {
      Row a = random_row(rng, 5, 5);
      Row b = random_row(rng, 5, 5);
      if (std::memcmp(a.data(), b.data(), 5) > 0) std::swap(a, b);
      EXPECT_LE(store.shard_of(a.data()), store.shard_of(b.data()));
    }
  }
}

TEST(ShardedPermStore, RoutingSpreadsLabelRowsAcrossAllShards) {
  // Regression: an early routing scheme scaled the raw byte prefix over the
  // full 16-bit range, but labels only reach width-1 (38 for the 3-wire
  // domain), so all rows collapsed into the first few shards and the
  // per-shard parallel phase ran nearly serial. Every shard must own at
  // least one label pair.
  for (const std::size_t width : {8u, 38u}) {
    for (const std::size_t shard_count : {4u, 16u}) {
      ShardedPermStore store(width, shard_count);
      std::vector<std::size_t> hits(shard_count, 0);
      Row row(width, 0);
      for (std::size_t b0 = 0; b0 < width; ++b0) {
        for (std::size_t b1 = 0; b1 < width; ++b1) {
          row[0] = static_cast<std::uint8_t>(b0);
          row[1] = static_cast<std::uint8_t>(b1);
          ++hits[store.shard_of(row.data())];
        }
      }
      for (std::size_t s = 0; s < shard_count; ++s) {
        EXPECT_GT(hits[s], 0u) << "width " << width << " shard " << s
                               << " of " << shard_count << " never hit";
      }
    }
  }
}

TEST(ShardedPermStore, FlattenEqualsSortedModel) {
  Rng rng(7101);
  for (const std::size_t shard_count : {1u, 3u, 8u, 32u}) {
    const std::size_t width = 1 + rng.below(10);
    ShardedPermStore store(width, shard_count);
    std::vector<Row> rows;
    for (int i = 0; i < 400; ++i) {
      rows.push_back(random_row(rng, width, static_cast<std::uint8_t>(width)));
      store.push_back(rows.back().data());
    }
    store.sort_unique();
    expect_equals_model(store.flatten(), set_of(rows));
    EXPECT_EQ(store.size(), set_of(rows).size());

    // drain_sorted yields the same rows and empties the store.
    expect_equals_model(store.drain_sorted(), set_of(rows));
    EXPECT_TRUE(store.empty());
  }
}

TEST(ShardedPermStore, ShardWiseAlgebraMatchesFlatAlgebra) {
  Rng rng(7102);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t width = 2 + rng.below(10);
    const std::uint8_t alphabet = static_cast<std::uint8_t>(width);
    const std::size_t shard_count = 1 + rng.below(32);
    std::vector<Row> a_rows;
    std::vector<Row> b_rows;
    for (std::size_t i = rng.below(200); i > 0; --i) {
      a_rows.push_back(random_row(rng, width, alphabet));
    }
    for (std::size_t i = rng.below(200); i > 0; --i) {
      if (!a_rows.empty() && rng.bernoulli(0.4)) {
        b_rows.push_back(a_rows[rng.below(a_rows.size())]);
      } else {
        b_rows.push_back(random_row(rng, width, alphabet));
      }
    }
    ShardedPermStore a(width, shard_count);
    ShardedPermStore b(width, shard_count);
    for (const Row& row : a_rows) a.push_back(row.data());
    for (const Row& row : b_rows) b.push_back(row.data());
    a.sort_unique();
    b.sort_unique();

    ShardedPermStore merged = a;
    merged.merge_sorted(b);
    RowSet union_model = set_of(a_rows);
    for (const Row& row : b_rows) union_model.insert(row);
    expect_equals_model(merged.flatten(), union_model);

    a.subtract_sorted(b);
    RowSet difference_model = set_of(a_rows);
    for (const Row& row : b_rows) difference_model.erase(row);
    expect_equals_model(a.flatten(), difference_model);
  }
}

TEST(ShardedPermStore, ContainsSortedMatchesModel) {
  Rng rng(7103);
  const std::size_t width = 6;
  ShardedPermStore store(width, 16);
  std::vector<Row> rows;
  for (int i = 0; i < 250; ++i) {
    rows.push_back(random_row(rng, width, 4));
    store.push_back(rows.back().data());
  }
  store.sort_unique();
  const RowSet model = set_of(rows);
  for (int i = 0; i < 250; ++i) {
    const Row probe = random_row(rng, width, 4);
    EXPECT_EQ(store.contains_sorted(probe.data()), model.count(probe) == 1);
  }
}

TEST(ShardedPermStore, WidthOneRoutesEverythingConsistently) {
  ShardedPermStore store(1, 8);
  const std::uint8_t rows[3] = {0, 128, 255};
  for (const std::uint8_t& row : rows) store.push_back(&row);
  store.sort_unique();
  EXPECT_EQ(store.size(), 3u);
  const FlatPermStore flat = store.flatten();
  EXPECT_EQ(flat.row(0)[0], 0);
  EXPECT_EQ(flat.row(1)[0], 128);
  EXPECT_EQ(flat.row(2)[0], 255);
  for (const std::uint8_t& row : rows) {
    EXPECT_TRUE(store.contains_sorted(&row));
  }
}

TEST(ShardedPermStore, RejectsMismatchedLayouts) {
  ShardedPermStore a(4, 8);
  ShardedPermStore b(4, 16);
  EXPECT_THROW(a.merge_sorted(b), qsyn::LogicError);
  EXPECT_THROW(a.subtract_sorted(b), qsyn::LogicError);
}

// --- wide domains: two-byte label rows (width > 256) -----------------------

/// A random row in the store's encoding for `width` labels (big-endian
/// two-byte labels when width > 256).
Row random_wide_row(Rng& rng, std::size_t width) {
  const std::size_t label_bytes = width <= 256 ? 1 : 2;
  Row row(width * label_bytes);
  for (std::size_t s = 0; s < width; ++s) {
    FlatPermStore::write_label(
        row.data(), s, label_bytes,
        static_cast<std::uint32_t>(rng.below(width)));
  }
  return row;
}

TEST(WidePermStore, LabelWidthSelection) {
  EXPECT_EQ(FlatPermStore(38).label_bytes(), 1u);
  EXPECT_EQ(FlatPermStore(256).label_bytes(), 1u);
  EXPECT_EQ(FlatPermStore(257).label_bytes(), 2u);
  EXPECT_EQ(FlatPermStore(782).label_bytes(), 2u);
  EXPECT_EQ(FlatPermStore(782).row_stride(), 1564u);
  EXPECT_THROW(FlatPermStore(65537), qsyn::LogicError);
}

TEST(WidePermStore, BigEndianEncodingKeepsMemcmpOrderLabelLexicographic) {
  // The invariant behind reusing the byte-wise set algebra unchanged: for
  // two-byte labels stored big-endian, memcmp order == label order.
  Rng rng(7200);
  const std::size_t width = 300;
  for (int trial = 0; trial < 200; ++trial) {
    const Row a = random_wide_row(rng, width);
    const Row b = random_wide_row(rng, width);
    int label_cmp = 0;
    for (std::size_t s = 0; s < width && label_cmp == 0; ++s) {
      const std::uint32_t la = FlatPermStore::read_label(a.data(), s, 2);
      const std::uint32_t lb = FlatPermStore::read_label(b.data(), s, 2);
      label_cmp = la < lb ? -1 : (la > lb ? 1 : 0);
    }
    const int byte_cmp = std::memcmp(a.data(), b.data(), a.size());
    EXPECT_EQ(byte_cmp < 0, label_cmp < 0);
    EXPECT_EQ(byte_cmp == 0, label_cmp == 0);
  }
}

TEST(WidePermStore, SetAlgebraMatchesModelAtWidth300) {
  Rng rng(7201);
  const std::size_t width = 300;
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<Row> a_rows;
    std::vector<Row> b_rows;
    for (std::size_t i = 80 + rng.below(80); i > 0; --i) {
      a_rows.push_back(random_wide_row(rng, width));
    }
    for (std::size_t i = 80 + rng.below(80); i > 0; --i) {
      if (rng.bernoulli(0.5)) {
        b_rows.push_back(a_rows[rng.below(a_rows.size())]);
      } else {
        b_rows.push_back(random_wide_row(rng, width));
      }
    }
    FlatPermStore a = store_of(a_rows, width);
    FlatPermStore b = store_of(b_rows, width);
    a.sort_unique();
    b.sort_unique();

    FlatPermStore merged = a;
    merged.merge_sorted(b);
    RowSet union_model = set_of(a_rows);
    for (const Row& row : b_rows) union_model.insert(row);
    expect_equals_model(merged, union_model);
    for (const Row& row : b_rows) {
      EXPECT_TRUE(merged.contains_sorted(row.data()));
    }

    a.subtract_sorted(b);
    RowSet difference_model = set_of(a_rows);
    for (const Row& row : b_rows) difference_model.erase(row);
    expect_equals_model(a, difference_model);
  }
}

TEST(WidePermStore, PermutationRoundTripAtWidth500) {
  Rng rng(7202);
  const std::size_t width = 500;
  // A random permutation of {1..500} via Fisher-Yates.
  std::vector<std::uint32_t> images(width);
  for (std::size_t i = 0; i < width; ++i) {
    images[i] = static_cast<std::uint32_t>(i + 1);
  }
  for (std::size_t i = width - 1; i > 0; --i) {
    std::swap(images[i], images[rng.below(i + 1)]);
  }
  const auto p = perm::Permutation::from_images(std::move(images));
  FlatPermStore store(width);
  store.push_back(p);
  ASSERT_EQ(store.size(), 1u);
  EXPECT_EQ(store.permutation(0), p);
  for (std::size_t s = 0; s < width; ++s) {
    EXPECT_EQ(store.label(0, s), p.apply(static_cast<std::uint32_t>(s + 1)) - 1);
  }
  EXPECT_EQ(store.encode_row(p),
            Row(store.row(0), store.row(0) + store.row_stride()));
}

TEST(WidePermStore, ShardRoutingIsMonotoneAndSpreadsAtWidth782) {
  // 782 = the 5-wire reduced domain. Monotonicity in row order keeps
  // flatten() globally sorted; spread keeps the parallel phase parallel.
  Rng rng(7203);
  for (const std::size_t shard_count : {4u, 16u}) {
    ShardedPermStore store(782, shard_count);
    for (int i = 0; i < 300; ++i) {
      Row a = random_wide_row(rng, 782);
      Row b = random_wide_row(rng, 782);
      if (std::memcmp(a.data(), b.data(), a.size()) > 0) std::swap(a, b);
      EXPECT_LE(store.shard_of(a.data()), store.shard_of(b.data()));
    }
    std::vector<std::size_t> hits(shard_count, 0);
    Row row(2 * 782, 0);
    for (std::size_t b0 = 0; b0 < 782; b0 += 7) {
      for (std::size_t b1 = 0; b1 < 782; b1 += 7) {
        FlatPermStore::write_label(row.data(), 0, 2,
                                   static_cast<std::uint32_t>(b0));
        FlatPermStore::write_label(row.data(), 1, 2,
                                   static_cast<std::uint32_t>(b1));
        ++hits[store.shard_of(row.data())];
      }
    }
    for (std::size_t s = 0; s < shard_count; ++s) {
      EXPECT_GT(hits[s], 0u) << "shard " << s << " of " << shard_count;
    }
  }
}

}  // namespace
}  // namespace qsyn::synth
