// Unit tests for qsyn/gates: gate semantics, the 18-gate 3-qubit library,
// and the paper's printed permutation representations (Section 3).
#include <gtest/gtest.h>

#include "common/error.h"
#include "gates/gate.h"
#include "gates/library.h"
#include "mvl/domain.h"

namespace qsyn::gates {
namespace {

using mvl::Pattern;
using mvl::PatternDomain;
using mvl::Quat;

// --- construction, naming, parsing --------------------------------------------

TEST(Gate, FactoryAndAccessors) {
  const Gate v = Gate::ctrl_v(1, 0);
  EXPECT_EQ(v.kind(), GateKind::kCtrlV);
  EXPECT_EQ(v.target(), 1u);
  EXPECT_EQ(v.control(), 0u);
  EXPECT_TRUE(v.has_control());
  const Gate n = Gate::not_gate(2);
  EXPECT_FALSE(n.has_control());
  EXPECT_THROW((void)n.control(), qsyn::LogicError);
}

TEST(Gate, SameWireRejected) {
  EXPECT_THROW(Gate::ctrl_v(1, 1), qsyn::LogicError);
  EXPECT_THROW(Gate::feynman(0, 0), qsyn::LogicError);
}

TEST(Gate, PaperNames) {
  EXPECT_EQ(Gate::ctrl_v(1, 0).name(), "VBA");
  EXPECT_EQ(Gate::ctrl_v_dagger(0, 1).name(), "V+AB");
  EXPECT_EQ(Gate::feynman(2, 0).name(), "FCA");
  EXPECT_EQ(Gate::not_gate(0).name(), "NA");
}

TEST(Gate, ParseRoundTrip) {
  for (const char* name : {"VBA", "VAB", "V+CA", "V+BC", "FCA", "FAB", "NA",
                           "NC"}) {
    EXPECT_EQ(Gate::parse(name).name(), name) << name;
  }
}

TEST(Gate, ParseAcceptsPaperFeynmanSpelling) {
  // The paper writes "FeCA" for the Feynman gate in one place.
  EXPECT_EQ(Gate::parse("FeCA"), Gate::feynman(2, 0));
}

TEST(Gate, ParseErrors) {
  EXPECT_THROW(Gate::parse(""), qsyn::ParseError);
  EXPECT_THROW(Gate::parse("X"), qsyn::ParseError);
  EXPECT_THROW(Gate::parse("VAA"), qsyn::ParseError);
  EXPECT_THROW(Gate::parse("QAB"), qsyn::ParseError);
  EXPECT_THROW(Gate::parse("VABC"), qsyn::ParseError);
  EXPECT_THROW(Gate::parse("V1B"), qsyn::ParseError);
}

TEST(Gate, AdjointSwapsVAndVDagger) {
  EXPECT_EQ(Gate::ctrl_v(1, 0).adjoint(), Gate::ctrl_v_dagger(1, 0));
  EXPECT_EQ(Gate::ctrl_v_dagger(2, 1).adjoint(), Gate::ctrl_v(2, 1));
  EXPECT_EQ(Gate::feynman(0, 1).adjoint(), Gate::feynman(0, 1));
  EXPECT_EQ(Gate::not_gate(1).adjoint(), Gate::not_gate(1));
}

TEST(Gate, WireLetters) {
  EXPECT_EQ(wire_letter(0), 'A');
  EXPECT_EQ(wire_letter(2), 'C');
  EXPECT_EQ(wire_from_letter('B'), 1u);
  EXPECT_EQ(wire_from_letter('b'), 1u);
  EXPECT_THROW((void)wire_from_letter('1'), qsyn::ParseError);
}

// --- multi-valued semantics ----------------------------------------------------

TEST(GateApply, CtrlVFiresOnlyOnControlOne) {
  const Gate v = Gate::ctrl_v(1, 0);  // VBA
  EXPECT_EQ(v.apply(Pattern::parse("1,0,0")), Pattern::parse("1,V0,0"));
  EXPECT_EQ(v.apply(Pattern::parse("1,1,0")), Pattern::parse("1,V1,0"));
  EXPECT_EQ(v.apply(Pattern::parse("1,V0,0")), Pattern::parse("1,1,0"));
  EXPECT_EQ(v.apply(Pattern::parse("1,V1,0")), Pattern::parse("1,0,0"));
  EXPECT_EQ(v.apply(Pattern::parse("0,1,0")), Pattern::parse("0,1,0"));
  // Mixed control: the paper's don't-care closure keeps the pattern.
  EXPECT_EQ(v.apply(Pattern::parse("V0,1,0")), Pattern::parse("V0,1,0"));
  EXPECT_EQ(v.apply(Pattern::parse("V1,V0,1")), Pattern::parse("V1,V0,1"));
}

TEST(GateApply, CtrlVDaggerValueMap) {
  const Gate vd = Gate::ctrl_v_dagger(0, 1);  // V+AB
  EXPECT_EQ(vd.apply(Pattern::parse("0,1,0")), Pattern::parse("V1,1,0"));
  EXPECT_EQ(vd.apply(Pattern::parse("1,1,0")), Pattern::parse("V0,1,0"));
  EXPECT_EQ(vd.apply(Pattern::parse("V1,1,0")), Pattern::parse("1,1,0"));
  EXPECT_EQ(vd.apply(Pattern::parse("V0,1,0")), Pattern::parse("0,1,0"));
}

TEST(GateApply, FeynmanXorsOnlyBinary) {
  const Gate f = Gate::feynman(2, 0);  // FCA: C ^= A
  EXPECT_EQ(f.apply(Pattern::parse("1,0,0")), Pattern::parse("1,0,1"));
  EXPECT_EQ(f.apply(Pattern::parse("1,0,1")), Pattern::parse("1,0,0"));
  EXPECT_EQ(f.apply(Pattern::parse("0,0,1")), Pattern::parse("0,0,1"));
  // Mixed operand: unchanged.
  EXPECT_EQ(f.apply(Pattern::parse("V0,0,1")), Pattern::parse("V0,0,1"));
  EXPECT_EQ(f.apply(Pattern::parse("1,0,V1")), Pattern::parse("1,0,V1"));
  // Bystander wire B mixed does not block FCA.
  EXPECT_EQ(f.apply(Pattern::parse("1,V0,0")), Pattern::parse("1,V0,1"));
}

TEST(GateApply, NotFlipsAllValues) {
  const Gate n = Gate::not_gate(1);
  EXPECT_EQ(n.apply(Pattern::parse("0,0,0")), Pattern::parse("0,1,0"));
  EXPECT_EQ(n.apply(Pattern::parse("0,V0,0")), Pattern::parse("0,V1,0"));
}

TEST(GateApply, WireBoundsChecked) {
  const Gate v = Gate::ctrl_v(2, 0);
  EXPECT_THROW((void)v.apply(Pattern::parse("1,0")), qsyn::LogicError);
}

// --- the paper's permutation representations ------------------------------------

class Library3 : public ::testing::Test {
 protected:
  const PatternDomain domain_ = PatternDomain::reduced(3);
  const GateLibrary library_{domain_};
};

TEST_F(Library3, HasEighteenGates) {
  EXPECT_EQ(library_.size(), 18u);
  EXPECT_EQ(library_.controlled_indices().size(), 12u);
  EXPECT_EQ(library_.feynman_indices().size(), 6u);
}

TEST_F(Library3, PaperCycleVBA) {
  const auto idx = library_.index_of("VBA");
  EXPECT_EQ(library_.permutation(idx).to_cycle_string(),
            "(5,17,7,21)(6,18,8,22)(13,19,15,23)(14,20,16,24)");
}

TEST_F(Library3, PaperCycleVdagAB) {
  const auto idx = library_.index_of("V+AB");
  EXPECT_EQ(library_.permutation(idx).to_cycle_string(),
            "(3,33,7,26)(4,34,8,27)(9,35,15,28)(10,36,16,29)");
}

TEST_F(Library3, PaperCycleFCA) {
  const auto idx = library_.index_of("FCA");
  EXPECT_EQ(library_.permutation(idx).to_cycle_string(),
            "(5,6)(7,8)(17,18)(21,22)");
}

TEST_F(Library3, AllGatePermsAreValidAndNontrivial) {
  for (std::size_t i = 0; i < library_.size(); ++i) {
    const auto& p = library_.permutation(i);
    EXPECT_EQ(p.degree(), 38u);
    EXPECT_FALSE(p.is_identity()) << library_.gate(i).name();
  }
}

TEST_F(Library3, ControlledGateOrderIsFour) {
  // V applied twice = NOT on the controlled subspace; four times = identity.
  for (const std::size_t i : library_.controlled_indices()) {
    EXPECT_EQ(library_.permutation(i).order(), 4u)
        << library_.gate(i).name();
  }
}

TEST_F(Library3, FeynmanGatesAreInvolutions) {
  for (const std::size_t i : library_.feynman_indices()) {
    EXPECT_EQ(library_.permutation(i).order(), 2u)
        << library_.gate(i).name();
  }
}

TEST_F(Library3, AdjointIndexInvertsPermutation) {
  for (std::size_t i = 0; i < library_.size(); ++i) {
    const std::size_t j = library_.adjoint_index(i);
    EXPECT_TRUE(
        (library_.permutation(i) * library_.permutation(j)).is_identity());
  }
}

TEST_F(Library3, BannedClassGrouping) {
  // The paper's L_A = {VBA, VCA, V+BA, V+CA}: control wire A.
  const auto la = library_.control_subset(0);
  EXPECT_EQ(la.size(), 4u);
  for (const std::size_t i : la) {
    EXPECT_EQ(library_.banned_class_of(i), domain_.control_class(0));
  }
  const auto lab = library_.feynman_subset(0, 1);
  EXPECT_EQ(lab.size(), 2u);
  for (const std::size_t i : lab) {
    EXPECT_EQ(library_.banned_class_of(i), domain_.feynman_class(0, 1));
  }
}

TEST_F(Library3, IndexOfUnknownThrows) {
  // NOT gates are not part of L; "VXY" parses (X, Y are valid wire letters)
  // but names a gate outside the 3-wire library; "V1B" cannot even parse.
  EXPECT_THROW((void)library_.index_of("NA"), qsyn::LogicError);
  EXPECT_THROW((void)library_.index_of("VXY"), qsyn::LogicError);
  EXPECT_THROW((void)library_.index_of("V1B"), qsyn::ParseError);
}

TEST_F(Library3, GatePermsFixLabelOne) {
  // The all-zero pattern contains no 1, so no library gate moves it.
  for (std::size_t i = 0; i < library_.size(); ++i) {
    EXPECT_EQ(library_.permutation(i).apply(1), 1u);
  }
}

TEST_F(Library3, VGatesStabilizeSOnlyPartially) {
  // V gates map some binary patterns to mixed ones (not binary-preserving).
  const auto& vba = library_.permutation(library_.index_of("VBA"));
  EXPECT_FALSE(vba.stabilizes_set({1, 2, 3, 4, 5, 6, 7, 8}));
  const auto& fca = library_.permutation(library_.index_of("FCA"));
  EXPECT_TRUE(fca.stabilizes_set({1, 2, 3, 4, 5, 6, 7, 8}));
}

TEST(Library, TwoWireLibraryHasSixGates) {
  const PatternDomain d2 = mvl::PatternDomain::reduced(2);
  const GateLibrary lib2(d2);
  EXPECT_EQ(lib2.size(), 6u);  // VAB, VBA, V+AB, V+BA, FAB, FBA
}

TEST(Library, CostModels) {
  const CostModel unit = CostModel::unit();
  EXPECT_EQ(Gate::ctrl_v(1, 0).cost(unit), 1u);
  EXPECT_EQ(Gate::feynman(1, 0).cost(unit), 1u);
  EXPECT_EQ(Gate::not_gate(0).cost(unit), 0u);
  const CostModel nmr = CostModel::nmr_like();
  EXPECT_GT(Gate::ctrl_v(1, 0).cost(nmr), Gate::feynman(1, 0).cost(nmr));
}

}  // namespace
}  // namespace qsyn::gates
