// Compile-time enforcement that the PR 7 migration shims stay deleted.
//
// `FmcfOptions` (the transitional alias of ClosureConfig) and
// `ShardedPermStore::take_flatten()` (the transitional spelling of
// drain_sorted()) existed only to keep old call sites compiling across one
// PR. Every in-tree caller now uses the new names; this suite makes the old
// ones a compile/ctest failure if they creep back:
//   * member detection proves take_flatten() is gone from ShardedPermStore
//     (and that drain_sorted(), the migration target, is present);
//   * a namespace-scope alias cannot be SFINAE-probed, so the companion
//     grep ctest (deprecated_names_absent, cmake/CheckDeprecatedNames.cmake)
//     scans the tree for both spellings — this file is its one exclusion.
#include <gtest/gtest.h>

#include <type_traits>
#include <utility>

#include "synth/closure_config.h"
#include "synth/fmcf.h"
#include "synth/sharded_perm_store.h"

namespace qsyn::synth {
namespace {

template <typename T, typename = void>
struct HasTakeFlatten : std::false_type {};
template <typename T>
struct HasTakeFlatten<
    T, std::void_t<decltype(std::declval<T&>().take_flatten())>>
    : std::true_type {};

template <typename T, typename = void>
struct HasDrainSorted : std::false_type {};
template <typename T>
struct HasDrainSorted<
    T, std::void_t<decltype(std::declval<T&>().drain_sorted())>>
    : std::true_type {};

static_assert(!HasTakeFlatten<ShardedPermStore>::value,
              "take_flatten() was deleted: callers drain stores via "
              "drain_sorted() (same contract, honest name)");
static_assert(HasDrainSorted<ShardedPermStore>::value,
              "drain_sorted() is the migration target and must stay");

TEST(Deprecation, ClosureConfigIsTheOneKnobSurface) {
  // The migration target works end to end: an enumerator built from a
  // ClosureConfig resolves and carries the configured knobs.
  ClosureConfig config;
  config.threads = 1;
  config.shards = 1;
  EXPECT_EQ(config.threads, 1u);
  EXPECT_EQ(config.shards, 1u);
}

}  // namespace
}  // namespace qsyn::synth
