#!/usr/bin/env bash
# Runs every paper-artifact bench binary and aggregates the google-benchmark
# timings into one baseline file so future PRs can diff perf against it.
#
# Usage: scripts/run_benches.sh [BUILD_DIR] [OUT_FILE]
#   BUILD_DIR  build tree containing bench/ binaries   (default: build)
#   OUT_FILE   aggregated baseline JSON                (default: BENCH_seed.json)
#
# BENCH_seed.json is the committed perf baseline. Optimisation PRs should run
#   scripts/run_benches.sh build BENCH_pr<N>.json
# and report deltas vs BENCH_seed.json in the PR description instead of
# overwriting the seed baseline.
#
# Timings are captured via --benchmark_out (see bench/bench_util.h), NOT by
# redirecting stdout: stdout carries the human-readable paper-vs-measured
# tables, which would corrupt redirected JSON. Extra google-benchmark flags
# (e.g. --benchmark_min_time=0.1s) can be passed via QSYN_BENCH_ARGS.
#
# The bench_* glob below picks up every registered bench, including
# bench_sim_batch (the fused/batched simulation engine): its
# bm_cross_check_sweep/0 row is the unfused gate-at-a-time baseline and the
# other fuse_block rows are the speedup evidence — compare them when
# reporting a PR's perf delta. QSYN_SIM_FUSE / QSYN_THREADS tune the
# engine's defaults but the bench pins its own knobs per row.
#
# bench_domain_growth carries the out-of-core closure row
# (bm_closure_outofcore/5): the 5-wire closure to k=3 under a 32 MiB spill
# budget, with heap_MiB/disk_MiB counters showing the working set living in
# sealed run files instead of RAM. QSYN_GROWTH_DEPTH=4 opts the same row into
# the gigabyte-scale level 4; its "spill engaged" stdout line turns into a
# DIFFERS failure if the run ever stops spilling.
#
# bench_backends races the three SynthesisBackend engines on time to first
# cascade (fresh closure sweep vs catalog open vs topology-search DFS) and
# carries the beyond-closure row (bm_search_5wire_cost4: a 5-wire cost-4
# target answered in-memory where the closure would need a ~2.5 GiB spill).
#
# bench_catalog measures the persistent-catalog serving layer:
# bm_catalog_cold_start (open + first locate on a saved cb=7 catalog — the
# number that replaces the multi-hundred-ms closure sweep), bm_catalog_locate
# (steady-state single queries), and bm_catalog_server_batch (pooled batch
# throughput with the witness-cache hit rate as a counter).
#
# bench_serve_soak soaks the multi-tenant serving front end
# (serve/automata_service.h): >= 100k mixed step/sample/distribution
# requests across automaton and QRNG tenants on n=2..4 cascades, with
# tenant churn through CatalogServer synthesis and measurement-backend
# flips mid-traffic. Its counters (rps, p50_us/p99_us from the
# common/metrics recorders, unitary_cache_hit_rate, witness_cache_hit_rate)
# are the serving-layer baseline; the "requests served ... (OK)" stdout row
# flips to DIFFERS if the soak ever falls short of the 100k floor or
# rejects a request.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
OUT_FILE="${2:-BENCH_seed.json}"
SCRATCH="bench-out"

if ! compgen -G "$BUILD_DIR/bench/bench_*" > /dev/null; then
  echo "error: no bench binaries under $BUILD_DIR/bench" >&2
  echo "build first: cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j" >&2
  exit 1
fi

# Fresh scratch dir: stale reports from removed/renamed benches must not
# leak into the aggregated baseline.
rm -rf "$SCRATCH"
mkdir -p "$SCRATCH"

failures=0
for bin in "$BUILD_DIR"/bench/bench_*; do
  [ -x "$bin" ] && [ -f "$bin" ] || continue
  name="$(basename "$bin")"
  echo "=== running $name ==="
  # shellcheck disable=SC2086  # QSYN_BENCH_ARGS is intentionally word-split
  if ! QSYN_BENCH_OUT="$SCRATCH/$name.bench.json" \
      "$bin" ${QSYN_BENCH_ARGS:-} > "$SCRATCH/$name.stdout.txt"; then
    echo "error: $name exited nonzero (see $SCRATCH/$name.stdout.txt)" >&2
    failures=$((failures + 1))
  fi
done

# Any paper-vs-measured row that disagrees is a regression: fail loudly
# instead of burying "DIFFERS" in scratch output nobody reads.
if grep -q 'DIFFERS' "$SCRATCH"/*.stdout.txt 2>/dev/null; then
  echo "error: paper-vs-measured mismatch (DIFFERS rows):" >&2
  grep -H 'DIFFERS' "$SCRATCH"/*.stdout.txt >&2
  failures=$((failures + 1))
fi
if [ "$failures" -ne 0 ]; then
  echo "error: $failures failure(s); baseline not written" >&2
  exit 1
fi

if ! compgen -G "$SCRATCH/*.bench.json" > /dev/null; then
  echo "error: no bench reports captured in $SCRATCH (was --benchmark_out" >&2
  echo "overridden via QSYN_BENCH_ARGS?); baseline not written" >&2
  exit 1
fi

python3 - "$OUT_FILE" "$SCRATCH"/*.bench.json <<'PYEOF'
import json
import os
import sys

out_file, report_files = sys.argv[1], sys.argv[2:]
aggregate = {"schema": "qsyn-bench-baseline-v1", "benches": {}}
for path in report_files:
    name = os.path.basename(path)[: -len(".bench.json")]
    # Benches that only regenerate a paper artifact register no
    # google-benchmark timings and leave the out-file empty.
    if os.path.getsize(path) == 0:
        aggregate["benches"][name] = {"benchmarks": []}
        continue
    with open(path) as fh:
        aggregate["benches"][name] = json.load(fh)
with open(out_file, "w") as fh:
    json.dump(aggregate, fh, indent=2)
    fh.write("\n")
print(f"wrote {out_file} ({len(report_files)} bench reports)")
PYEOF
