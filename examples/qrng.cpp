// examples/qrng.cpp
//
// Section 4 of the paper: a controlled quantum random number generator.
//
// Synthesizes the minimal circuit whose measured output wire C is a fair
// coin whenever the control wire A is 1 (and a plain passthrough otherwise),
// then validates the exact output distribution against both the multi-valued
// model and a Monte-Carlo measurement run.
#include <cstdio>

#include "automata/qrng.h"
#include "common/rng.h"
#include "gates/library.h"
#include "mvl/domain.h"
#include "sim/state_vector.h"

int main() {
  using namespace qsyn;

  const mvl::PatternDomain domain = mvl::PatternDomain::reduced(3);
  const gates::GateLibrary library(domain);

  // Behavioral spec: wire C must be an unbiased coin when A = 1.
  const automata::BehavioralProbSpec spec = automata::controlled_coin_spec(3);
  const auto qrng = automata::ControlledQrng::synthesize(library, spec);
  if (!qrng.has_value()) {
    std::printf("synthesis failed\n");
    return 1;
  }
  std::printf("synthesized controlled QRNG: %s\n%s\n\n",
              qrng->circuit().to_string().c_str(),
              qrng->circuit().to_diagram().c_str());

  Rng rng(20260612);
  for (const std::uint32_t input : {0b000u, 0b100u, 0b110u}) {
    std::printf("input A=%u B=%u C=%u:\n", input >> 2 & 1, input >> 1 & 1,
                input & 1);
    const auto dist = qrng->distribution(input);
    const auto hist = qrng->histogram(input, 50000, rng);
    for (std::uint32_t outcome = 0; outcome < 8; ++outcome) {
      if (dist[outcome] == 0.0 && hist[outcome] == 0) continue;
      std::printf("  outcome %u%u%u: exact %.3f, sampled %.3f\n",
                  outcome >> 2 & 1, outcome >> 1 & 1, outcome & 1,
                  dist[outcome], hist[outcome] / 50000.0);
    }
    // Cross-check against the full Hilbert-space simulator.
    sim::StateVector state = sim::StateVector::basis(3, input);
    state.apply_cascade(qrng->circuit());
    double max_diff = 0.0;
    for (std::uint32_t outcome = 0; outcome < 8; ++outcome) {
      max_diff = std::max(
          max_diff, std::abs(dist[outcome] - state.probability_of(outcome)));
    }
    std::printf("  Hilbert-space cross-check max |diff| = %.2e\n\n", max_diff);
  }
  return 0;
}
