// examples/peres_family.cpp
//
// Section 5 of the paper: the family of 24 "Peres-like" universal gates.
//
// This example enumerates all cost-4 reversible circuits (G[4]), separates
// the 60 linear (four-CNOT) members from the 24 universal Peres-like gates,
// groups the 24 into the paper's four families under wire permutation, and
// prints one synthesized circuit per family with a universality certificate.
#include <cstdio>
#include <set>

#include "gates/library.h"
#include "mvl/domain.h"
#include "perm/perm_group.h"
#include "sim/cross_check.h"
#include "synth/fmcf.h"
#include "synth/universality.h"

int main() {
  using namespace qsyn;

  const mvl::PatternDomain domain = mvl::PatternDomain::reduced(3);
  const gates::GateLibrary library(domain);

  // Enumerate all minimal-cost-4 reversible circuits.
  synth::FmcfEnumerator enumerator(library);
  enumerator.run_to(4);
  const auto g4 = enumerator.g_set(4);
  std::printf("|G[4]| = %zu circuits of minimal quantum cost 4\n", g4.size());

  std::vector<perm::Permutation> universal;
  for (const auto& g : g4) {
    if (synth::is_universal_with_not_and_feynman(g)) universal.push_back(g);
  }
  std::printf("  %zu are linear (four CNOTs), %zu are universal Peres-like "
              "gates\n\n",
              g4.size() - universal.size(), universal.size());

  // Wire-permutation conjugation partitions the 24 into families.
  std::vector<perm::Permutation> shuffles;
  const int orders[6][3] = {{0, 1, 2}, {0, 2, 1}, {1, 0, 2},
                            {1, 2, 0}, {2, 0, 1}, {2, 1, 0}};
  for (const auto& order : orders) {
    std::vector<std::uint32_t> images(8);
    for (std::uint32_t bits = 0; bits < 8; ++bits) {
      std::uint32_t shuffled = 0;
      for (int w = 0; w < 3; ++w) {
        shuffled |= ((bits >> (2 - order[w])) & 1u) << (2 - w);
      }
      images[bits] = shuffled + 1;
    }
    shuffles.push_back(perm::Permutation::from_images(images));
  }

  std::set<perm::Permutation> remaining(universal.begin(), universal.end());
  int family = 0;
  while (!remaining.empty()) {
    ++family;
    const perm::Permutation rep = *remaining.begin();
    std::size_t members = 0;
    for (const auto& w : shuffles) {
      members += remaining.erase(w.inverse() * rep * w);
    }
    const auto entry = enumerator.find(rep);
    const gates::Cascade witness = enumerator.witness(*entry);
    const auto m = synth::group_with_not_and_feynman(rep);
    std::printf("family %d: representative %s (%zu members)\n", family,
                rep.to_cycle_string().c_str(), members);
    std::printf("  realization: %s\n%s\n", witness.to_string().c_str(),
                witness.to_diagram().c_str());
    std::printf("  universality: |<g, NOT, Feynman>| = %llu (= |S8|? %s), "
                "unitary exact: %s\n\n",
                static_cast<unsigned long long>(m.order()),
                m.order() == 40320 ? "yes" : "no",
                sim::realizes_permutation(witness, rep) ? "yes" : "no");
  }
  std::printf("total families: %d (the paper's g1..g4)\n", family);
  return family == 4 ? 0 : 1;
}
