// examples/quantum_automaton.cpp
//
// Figure 3 of the paper: a quantum-realized probabilistic state machine.
//
// We build a 2-state machine whose combinational core is a synthesized
// quantum circuit: wire A holds the state, wire B is an external input, and
// wire C is a scratch output. When B = 1 the next state is a fair coin
// (quantum randomness); when B = 0 the state toggles deterministically.
// The example compares the exact Markov-chain stationary distribution
// (computed with the linear-algebra substrate) against Monte-Carlo runs, and
// then treats the same machine as a Hidden Markov Model.
#include <cstdio>

#include "automata/automaton.h"
#include "automata/hmm.h"
#include "automata/prob_spec.h"
#include "automata/prob_synth.h"
#include "common/rng.h"
#include "gates/library.h"
#include "mvl/domain.h"

int main() {
  using namespace qsyn;
  using automata::WireBehavior;

  const mvl::PatternDomain domain = mvl::PatternDomain::reduced(3);
  const gates::GateLibrary library(domain);

  // Behavioral spec over (A=state, B=input, C=input):
  //   B=1:        next state is a fair coin (quantum randomness);
  //   B=0, C=1:   the state toggles deterministically;
  //   B=0, C=0:   the state holds.
  // (The all-zero input must map to itself — every gate in the paper's
  // library fixes it — which this spec respects.)
  const auto keep = [](bool bit) {
    return bit ? WireBehavior::kOne : WireBehavior::kZero;
  };
  std::vector<std::vector<WireBehavior>> rows;
  for (std::uint32_t input = 0; input < 8; ++input) {
    const bool a = (input >> 2 & 1) != 0;
    const bool b = (input >> 1 & 1) != 0;
    const bool c = (input & 1) != 0;
    std::vector<WireBehavior> row(3);
    row[0] = b ? WireBehavior::kCoin : (c ? keep(!a) : keep(a));
    row[1] = keep(b);
    row[2] = keep(c);
    rows.push_back(std::move(row));
  }
  const automata::BehavioralProbSpec spec(3, rows);

  const automata::ProbSynthesizer synthesizer(library);
  const auto circuit = synthesizer.synthesize(spec);
  if (!circuit.has_value()) {
    std::printf("synthesis failed\n");
    return 1;
  }
  std::printf("combinational quantum core (%zu gates): %s\n%s\n\n",
              circuit->size(), circuit->to_string().c_str(),
              circuit->to_diagram().c_str());

  automata::QuantumAutomaton machine(*circuit, /*state_wires=*/1);
  Rng rng(42);

  for (const std::uint32_t input : {0b01u, 0b10u}) {
    std::printf("fixed input B=%u C=%u:\n", input >> 1 & 1, input & 1);
    const la::Matrix t = machine.transition_matrix(input);
    std::printf("  transition matrix (columns = current state):\n");
    for (std::size_t r = 0; r < 2; ++r) {
      std::printf("    [%.3f %.3f]\n", t(r, 0).real(), t(r, 1).real());
    }
    if (input == 0b10) {
      const auto exact = machine.stationary_distribution(input);
      const auto empirical = machine.empirical_distribution(input, 100000,
                                                            rng);
      for (std::size_t s = 0; s < 2; ++s) {
        std::printf("  state %zu: stationary %.4f vs Monte-Carlo %.4f\n", s,
                    exact[s], empirical[s]);
      }
    } else {
      std::printf("  (periodic deterministic toggle: no unique stationary "
                  "distribution)\n");
    }
  }

  // The measurement unit can swap the exact multi-valued product rule for
  // the full Hilbert-space backend (the fused/batched engine of
  // sim/batch.h); on a reasonable circuit both agree to rounding.
  {
    automata::QuantumAutomaton hilbert(*circuit, /*state_wires=*/1);
    hilbert.set_measurement_backend(automata::MeasurementBackend::kHilbert);
    const la::Matrix mv = machine.transition_matrix(0b10);
    const la::Matrix hs = hilbert.transition_matrix(0b10);
    std::printf(
        "Hilbert-backend transition matrix matches the MV product rule: "
        "max |diff| = %.1e\n\n",
        mv.max_abs_diff(hs));
  }

  // HMM view with the randomizing input held fixed.
  std::printf("\nHMM view (input B=1, C=0):\n");
  const automata::QuantumHmm hmm(std::move(machine), 0b10);
  const auto traj = hmm.sample(0, 24, rng);
  std::printf("  sampled hidden states: ");
  for (const auto s : traj.states) std::printf("%u", s);
  std::printf("\n  log-likelihood of the sampled emissions: %.4f\n",
              hmm.log_likelihood(0, traj.emissions));
  std::printf("  p(next=0 | state=0) = %.3f, p(next=1 | state=0) = %.3f\n",
              hmm.transition_probability(0, 0),
              hmm.transition_probability(0, 1));
  return 0;
}
