// examples/explore_costs.cpp
//
// A small synthesis CLI over the public API: give it a 3-bit reversible
// circuit as a permutation in cycle notation (the paper's labeling:
// 1 = |000>, ..., 8 = |111>) and it prints the minimal quantum-cost
// realization, every minimal implementation (closure engine only), and the
// NMR-style weighted optimum.
//
// Synthesis goes through the `synth::SynthesisBackend` seam, so the engine
// is a command-line choice: the exhaustive FMCF closure (default) or the
// topology-guided DFS, which answers the same costs without materializing
// the closure.
//
// Usage:
//   explore_costs                            # demo on famous gates
//   explore_costs "(5,7,6,8)"                # synthesize one permutation
//   explore_costs --engine=search "(5,7,6,8)"  # same answer via the DFS
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "common/error.h"
#include "gates/library.h"
#include "mvl/domain.h"
#include "perm/permutation.h"
#include "sim/cross_check.h"
#include "synth/backend.h"
#include "synth/search/topology_search.h"
#include "synth/specs.h"
#include "synth/weighted.h"

namespace {

using namespace qsyn;

void synthesize_one(synth::SynthesisBackend& backend,
                    const synth::WeightedSynthesizer& nmr,
                    const std::string& name, const perm::Permutation& target) {
  std::printf("--- %s = %s ---\n", name.c_str(),
              target.to_cycle_string().c_str());
  const auto result = backend.synthesize(target);
  if (!result.has_value()) {
    std::printf("  no realization with quantum cost <= %u\n",
                backend.max_cost());
    return;
  }
  // Enumerating *every* minimal implementation is a closure-only capability;
  // the seam advertises it via info().enumerates_implementations and the
  // enumeration itself stays behind the concrete engine.
  if (auto* closure = dynamic_cast<synth::ClosureBackend*>(&backend)) {
    const auto impls = closure->expressor().implementations(target);
    std::printf("  minimal quantum cost: %u (%zu implementation%s)\n",
                impls.front().cost, impls.size(), impls.size() == 1 ? "" : "s");
    for (const auto& impl : impls) {
      std::printf("    %s%s\n", impl.circuit.to_string().c_str(),
                  sim::realizes_permutation(impl.circuit, target)
                      ? ""
                      : "  [unitary MISMATCH]");
    }
  } else {
    std::printf("  minimal quantum cost: %u (one witness)\n", result->cost);
    std::printf("    %s%s\n", result->circuit.to_string().c_str(),
                sim::realizes_permutation(result->circuit, target)
                    ? ""
                    : "  [unitary MISMATCH]");
  }
  std::printf("%s\n", result->circuit.to_diagram().c_str());
  if (const auto weighted = nmr.synthesize(target)) {
    std::printf("  NMR-style optimum (V=3, CNOT=2, NOT=1): %s (cost %u)\n",
                weighted->circuit.to_string().c_str(), weighted->cost);
  }
  std::printf("\n");
}

std::unique_ptr<synth::SynthesisBackend> make_backend(
    const gates::GateLibrary& library, const std::string& engine) {
  if (engine == "search") {
    synth::SearchConfig config;
    config.max_cost = 7;
    return std::make_unique<synth::TopologySearchBackend>(library, config);
  }
  if (engine == "closure") {
    return std::make_unique<synth::ClosureBackend>(library, 7);
  }
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace qsyn;
  std::string engine = "closure";
  int arg = 1;
  if (arg < argc && std::strncmp(argv[arg], "--engine=", 9) == 0) {
    engine = argv[arg] + 9;
    ++arg;
  }

  const mvl::PatternDomain domain = mvl::PatternDomain::reduced(3);
  const gates::GateLibrary library(domain);
  const auto backend = make_backend(library, engine);
  if (!backend) {
    std::printf("error: unknown engine '%s' (closure | search)\n",
                engine.c_str());
    return 1;
  }
  const synth::WeightedSynthesizer nmr(library, gates::CostModel::nmr_like());
  std::printf("engine: %s (cb = %u)\n", backend->info().name.c_str(),
              backend->max_cost());
  if (auto* closure = dynamic_cast<synth::ClosureBackend*>(backend.get())) {
    std::printf("FMCF sweep threads: %zu (set QSYN_THREADS to override)\n",
                closure->expressor().enumerator().threads());
  }
  std::printf("\n");

  if (arg < argc) {
    try {
      const auto target = perm::Permutation::from_cycles(argv[arg], 8);
      synthesize_one(*backend, nmr, argv[arg], target);
    } catch (const qsyn::Error& e) {
      std::printf("error: %s\n", e.what());
      return 1;
    }
    return 0;
  }

  synthesize_one(*backend, nmr, "Peres", synth::peres_perm());
  synthesize_one(*backend, nmr, "Toffoli", synth::toffoli_perm());
  synthesize_one(*backend, nmr, "Fredkin", synth::fredkin_perm());
  synthesize_one(*backend, nmr, "swap(B,C)", synth::swap_bc_perm());
  return 0;
}
