// examples/explore_costs.cpp
//
// A small synthesis CLI over the public API: give it a 3-bit reversible
// circuit as a permutation in cycle notation (the paper's labeling:
// 1 = |000>, ..., 8 = |111>) and it prints the minimal quantum-cost
// realization, every minimal implementation, and the NMR-style weighted
// optimum.
//
// Usage:
//   explore_costs                 # demo on famous gates
//   explore_costs "(5,7,6,8)"     # synthesize a specific permutation
#include <cstdio>
#include <string>

#include "common/error.h"
#include "gates/library.h"
#include "mvl/domain.h"
#include "perm/permutation.h"
#include "sim/cross_check.h"
#include "synth/mce.h"
#include "synth/specs.h"
#include "synth/weighted.h"

namespace {

using namespace qsyn;

void synthesize_one(synth::McExpressor& mce,
                    const synth::WeightedSynthesizer& nmr,
                    const std::string& name, const perm::Permutation& target) {
  std::printf("--- %s = %s ---\n", name.c_str(),
              target.to_cycle_string().c_str());
  const auto impls = mce.implementations(target);
  if (impls.empty()) {
    std::printf("  no realization with quantum cost <= %u\n", mce.max_cost());
    return;
  }
  std::printf("  minimal quantum cost: %u (%zu implementation%s)\n",
              impls.front().cost, impls.size(), impls.size() == 1 ? "" : "s");
  for (const auto& impl : impls) {
    std::printf("    %s%s\n", impl.circuit.to_string().c_str(),
                sim::realizes_permutation(impl.circuit, target)
                    ? ""
                    : "  [unitary MISMATCH]");
  }
  std::printf("%s\n", impls.front().circuit.to_diagram().c_str());
  if (const auto weighted = nmr.synthesize(target)) {
    std::printf("  NMR-style optimum (V=3, CNOT=2, NOT=1): %s (cost %u)\n",
                weighted->circuit.to_string().c_str(), weighted->cost);
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace qsyn;
  const mvl::PatternDomain domain = mvl::PatternDomain::reduced(3);
  const gates::GateLibrary library(domain);
  synth::McExpressor mce(library, 7);
  const synth::WeightedSynthesizer nmr(library,
                                       gates::CostModel::nmr_like());
  std::printf("FMCF sweep threads: %zu (set QSYN_THREADS to override)\n\n",
              mce.enumerator().threads());

  if (argc > 1) {
    try {
      const auto target = perm::Permutation::from_cycles(argv[1], 8);
      synthesize_one(mce, nmr, argv[1], target);
    } catch (const qsyn::Error& e) {
      std::printf("error: %s\n", e.what());
      return 1;
    }
    return 0;
  }

  synthesize_one(mce, nmr, "Peres", synth::peres_perm());
  synthesize_one(mce, nmr, "Toffoli", synth::toffoli_perm());
  synthesize_one(mce, nmr, "Fredkin", synth::fredkin_perm());
  synthesize_one(mce, nmr, "swap(B,C)", synth::swap_bc_perm());
  return 0;
}
