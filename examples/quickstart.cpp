// examples/quickstart.cpp
//
// Quickstart for the qsyn library: synthesize the Toffoli gate from truly
// quantum gates (controlled-V, controlled-V+, CNOT), print the circuit, and
// verify it in full Hilbert-space simulation.
//
// This is the headline use case of the paper: Toffoli's minimal realization
// over the 2-qubit quantum library has quantum cost 5 (Figure 9). Synthesis
// goes through the `synth::SynthesisBackend` seam, so the same call works
// with any engine — the exhaustive FMCF closure below, the persistent
// catalog (`CatalogServer::as_backend()`), or the topology-guided DFS used
// here as a cross-check.
#include <cstdio>

#include "gates/library.h"
#include "mvl/domain.h"
#include "perm/permutation.h"
#include "sim/cross_check.h"
#include "synth/backend.h"
#include "synth/search/topology_search.h"
#include "synth/specs.h"

int main() {
  using namespace qsyn;

  // 1. Build the 3-qubit synthesis domain (the paper's 38 labeled patterns)
  //    and the 18-gate quantum library L.
  const mvl::PatternDomain domain = mvl::PatternDomain::reduced(3);
  const gates::GateLibrary library(domain);
  std::printf("domain: %zu patterns, library: %zu gates\n", domain.size(),
              library.size());

  // 2. Describe the target reversible circuit as a permutation of the 8
  //    binary patterns. Toffoli swaps |110> and |111>: (7,8).
  const perm::Permutation toffoli = synth::toffoli_perm();
  std::printf("target: Toffoli = %s\n", toffoli.to_cycle_string().c_str());

  // 3. Synthesize a minimum-quantum-cost realization. The closure engine is
  //    the paper's MCE algorithm; every engine answers through the same
  //    SynthesisBackend interface, so swapping engines changes one line.
  synth::ClosureBackend closure(library, /*max_cost=*/7);
  synth::SynthesisBackend& backend = closure;
  std::printf("engine: %s (cb = %u)\n", backend.info().name.c_str(),
              backend.max_cost());
  const auto result = backend.synthesize(toffoli);
  if (!result.has_value()) {
    std::printf("no realization within the cost bound\n");
    return 1;
  }
  std::printf("minimal quantum cost: %u\n", result->cost);
  std::printf("cascade: %s\n", result->circuit.to_string().c_str());
  std::printf("%s\n", result->circuit.to_diagram().c_str());

  // 4. Verify in full Hilbert space: the cascade's 8x8 unitary must be
  //    exactly the Toffoli permutation matrix.
  const bool exact = sim::realizes_permutation(result->circuit, toffoli);
  std::printf("unitary check: %s\n", exact ? "exact" : "MISMATCH");

  // 5. Cross-check with the second engine: the topology-guided DFS searches
  //    per query instead of sweeping the whole closure, and being exact it
  //    must land on the same minimal cost.
  synth::TopologySearchBackend search(library);
  const auto via_search = search.synthesize(toffoli);
  const bool agree = via_search.has_value() && via_search->cost == result->cost;
  std::printf("topology-search cross-check: %s\n",
              agree ? "same minimal cost" : "MISMATCH");
  return exact && agree ? 0 : 1;
}
