// examples/learn_from_behavior.cpp
//
// The paper's future-work idea made concrete: synthesize a quantum circuit
// from *examples of its measured behavior* alone. We sample a hidden
// probabilistic circuit's input/output measurements, infer the behavioral
// spec (each wire is 0, 1, or a fair coin per input under the four-valued
// model), synthesize a minimal circuit for that spec, and check that the
// learned circuit's exact output distributions match the hidden one.
#include <cstdio>

#include "automata/learn.h"
#include "automata/measurement.h"
#include "common/rng.h"
#include "gates/library.h"
#include "mvl/domain.h"

int main() {
  using namespace qsyn;

  const mvl::PatternDomain domain = mvl::PatternDomain::reduced(3);
  const gates::GateLibrary library(domain);

  // The hidden system (pretend we can only press buttons and measure).
  const gates::Cascade hidden = gates::Cascade::parse("FAC*VAB*VCB", 3);
  std::printf("hidden circuit (not shown to the learner): %s\n\n",
              hidden.to_string().c_str());

  Rng rng(20260612);
  const auto samples = automata::sample_behavior(hidden, 200, rng);
  std::printf("collected %zu measurement samples (200 per input word)\n",
              samples.size());

  const auto learned_spec = automata::infer_spec(3, samples);
  if (!learned_spec.has_value()) {
    std::printf("behavior is not explainable by the four-valued model\n");
    return 1;
  }
  std::printf("inferred behavioral spec (per input: wire classes):\n");
  for (std::uint32_t input = 0; input < 8; ++input) {
    std::printf("  input %u%u%u ->", input >> 2 & 1, input >> 1 & 1,
                input & 1);
    for (std::size_t w = 0; w < 3; ++w) {
      std::printf(" %s",
                  automata::to_string(
                      learned_spec->spec.behavior_for(input)[w])
                      .c_str());
    }
    std::printf("\n");
  }

  const auto circuit = automata::learn_circuit(library, samples);
  if (!circuit.has_value()) {
    std::printf("no circuit of cost <= 7 matches the inferred spec\n");
    return 1;
  }
  std::printf("\nlearned circuit (%zu gates): %s\n%s\n", circuit->size(),
              circuit->to_string().c_str(), circuit->to_diagram().c_str());

  double max_diff = 0.0;
  for (std::uint32_t input = 0; input < 8; ++input) {
    const auto want = automata::outcome_distribution(
        hidden.apply(mvl::Pattern::from_binary(3, input)));
    const auto got = automata::outcome_distribution(
        circuit->apply(mvl::Pattern::from_binary(3, input)));
    for (std::size_t o = 0; o < want.size(); ++o) {
      max_diff = std::max(max_diff, std::abs(want[o] - got[o]));
    }
  }
  std::printf("max |distribution difference| vs hidden circuit: %.2e %s\n",
              max_diff, max_diff < 1e-9 ? "(exact behavioral match)" : "");
  return max_diff < 1e-9 ? 0 : 1;
}
