// examples/catalog.cpp
//
// A "standard cell" catalog of exactly synthesizable 3-qubit reversible
// circuits: enumerates every G[k] up to the paper's bound cb = 7, prints
// per-cost statistics (counts, cycle-type histogram, universal members), and
// a few sample realizations per cost. Pass --full to dump every circuit with
// one witness cascade each (1260 entries).
#include <cstdio>
#include <cstring>
#include <map>
#include <string>

#include "gates/library.h"
#include "mvl/domain.h"
#include "synth/fmcf.h"
#include "synth/rewrite.h"
#include "synth/universality.h"

int main(int argc, char** argv) {
  using namespace qsyn;
  const bool full = argc > 1 && std::strcmp(argv[1], "--full") == 0;

  const mvl::PatternDomain domain = mvl::PatternDomain::reduced(3);
  const gates::GateLibrary library(domain);
  synth::FmcfEnumerator enumerator(library);
  enumerator.run_to(7);

  std::size_t total = 0;
  for (unsigned k = 0; k <= 7; ++k) {
    const auto g = enumerator.g_set(k);
    total += g.size();
    std::map<std::string, std::size_t> cycle_types;
    std::size_t universal = 0;
    for (const auto& p : g) {
      std::string type;
      for (const std::size_t len : p.cycle_type()) {
        if (!type.empty()) type += '+';
        type += std::to_string(len);
      }
      if (type.empty()) type = "id";
      ++cycle_types[type];
      if (k > 0 && synth::is_universal_with_not_and_feynman(p)) ++universal;
    }
    std::printf("cost %u: %zu circuits, %zu universal with NOT+CNOT\n", k,
                g.size(), universal);
    std::printf("  cycle types:");
    for (const auto& [type, count] : cycle_types) {
      std::printf(" %s x%zu", type.c_str(), count);
    }
    std::printf("\n");
    std::size_t shown = 0;
    for (const auto& p : g) {
      if (!full && ++shown > 3) break;
      const auto entry = enumerator.find(p);
      const gates::Cascade witness =
          synth::simplify(enumerator.witness(*entry));
      std::printf("    %-28s = %s\n", p.to_cycle_string().c_str(),
                  witness.to_string().c_str());
      if (full) ++shown;
    }
    if (!full && g.size() > 3) {
      std::printf("    ... (%zu more; run with --full)\n", g.size() - 3);
    }
  }
  std::printf("total: %zu circuits of quantum cost <= 7 (out of 5040 "
              "NOT-free reversible functions)\n",
              total);
  return 0;
}
